package schema

import (
	"strings"
	"testing"
)

func TestRelationBasics(t *testing.T) {
	r := NewRelation("proj", "name", "emp", "company")
	if r.Arity() != 3 {
		t.Errorf("arity = %d, want 3", r.Arity())
	}
	if r.AttrPos("emp") != 1 {
		t.Errorf("AttrPos(emp) = %d, want 1", r.AttrPos("emp"))
	}
	if r.AttrPos("nope") != -1 {
		t.Errorf("AttrPos(nope) = %d, want -1", r.AttrPos("nope"))
	}
	if got := r.String(); got != "proj(name, emp, company)" {
		t.Errorf("String() = %q", got)
	}
	r.WithKey(0)
	if len(r.Key) != 1 || r.Key[0] != 0 {
		t.Errorf("key = %v", r.Key)
	}
}

func TestRelationValidate(t *testing.T) {
	cases := []struct {
		name string
		rel  *Relation
		ok   bool
	}{
		{"valid", NewRelation("r", "a", "b"), true},
		{"empty name", NewRelation("", "a"), false},
		{"no attrs", NewRelation("r"), false},
		{"dup attrs", NewRelation("r", "a", "a"), false},
		{"empty attr", NewRelation("r", ""), false},
		{"bad key", NewRelation("r", "a").WithKey(5), false},
	}
	for _, c := range cases {
		if err := c.rel.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestSchemaAddAndLookup(t *testing.T) {
	s := New("src")
	s.MustAddRelation(NewRelation("a", "x"))
	s.MustAddRelation(NewRelation("b", "y", "z"))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Relation("a") == nil || s.Relation("c") != nil {
		t.Error("lookup broken")
	}
	if !s.HasRelation("b") || s.HasRelation("zz") {
		t.Error("HasRelation broken")
	}
	if got := s.RelationNames(); got[0] != "a" || got[1] != "b" {
		t.Errorf("order broken: %v", got)
	}
	if err := s.AddRelation(NewRelation("a", "q")); err == nil {
		t.Error("duplicate relation accepted")
	}
	if !strings.Contains(s.String(), "a(x)") {
		t.Errorf("String missing relation: %s", s)
	}
}

func TestSchemaFKs(t *testing.T) {
	s := New("t")
	s.MustAddRelation(NewRelation("task", "name", "oid"))
	s.MustAddRelation(NewRelation("org", "oid", "cname"))
	fk := ForeignKey{FromRel: "task", FromCols: []int{1}, ToRel: "org", ToCols: []int{0}}
	if err := s.AddFK(fk); err != nil {
		t.Fatal(err)
	}
	if n := len(s.FKs()); n != 1 {
		t.Errorf("FKs = %d", n)
	}
	if n := len(s.FKsFrom("task")); n != 1 {
		t.Errorf("FKsFrom(task) = %d", n)
	}
	if n := len(s.FKsTo("org")); n != 1 {
		t.Errorf("FKsTo(org) = %d", n)
	}
	if n := len(s.FKsFrom("org")); n != 0 {
		t.Errorf("FKsFrom(org) = %d", n)
	}

	bad := []ForeignKey{
		{FromRel: "nope", FromCols: []int{0}, ToRel: "org", ToCols: []int{0}},
		{FromRel: "task", FromCols: []int{0}, ToRel: "nope", ToCols: []int{0}},
		{FromRel: "task", FromCols: []int{0, 1}, ToRel: "org", ToCols: []int{0}},
		{FromRel: "task", FromCols: []int{9}, ToRel: "org", ToCols: []int{0}},
		{FromRel: "task", FromCols: []int{0}, ToRel: "org", ToCols: []int{9}},
		{FromRel: "task", FromCols: nil, ToRel: "org", ToCols: nil},
	}
	for i, fk := range bad {
		if err := s.AddFK(fk); err == nil {
			t.Errorf("bad fk %d accepted: %v", i, fk)
		}
	}
}

func TestCorrespondences(t *testing.T) {
	src := New("s")
	src.MustAddRelation(NewRelation("p", "a", "b"))
	src.MustAddRelation(NewRelation("q", "c"))
	tgt := New("t")
	tgt.MustAddRelation(NewRelation("u", "x"))
	tgt.MustAddRelation(NewRelation("v", "y"))

	cs := Correspondences{
		{SourceRel: "p", SourcePos: 0, TargetRel: "u", TargetPos: 0},
		{SourceRel: "p", SourcePos: 1, TargetRel: "v", TargetPos: 0},
		{SourceRel: "q", SourcePos: 0, TargetRel: "v", TargetPos: 0},
		{SourceRel: "p", SourcePos: 0, TargetRel: "u", TargetPos: 0}, // dup
	}
	if err := cs.Validate(src, tgt); err != nil {
		t.Fatal(err)
	}
	if got := cs.Dedup(); len(got) != 3 {
		t.Errorf("Dedup len = %d, want 3", len(got))
	}
	if got := cs.ForTargetRel("v"); len(got) != 2 {
		t.Errorf("ForTargetRel(v) = %d, want 2", len(got))
	}
	if got := cs.ForSourceRel("q"); len(got) != 1 {
		t.Errorf("ForSourceRel(q) = %d, want 1", len(got))
	}
	if got := cs.SourceRels(); len(got) != 2 || got[0] != "p" {
		t.Errorf("SourceRels = %v", got)
	}
	if got := cs.TargetRels(); len(got) != 2 || got[0] != "u" {
		t.Errorf("TargetRels = %v", got)
	}

	bad := Correspondences{{SourceRel: "p", SourcePos: 7, TargetRel: "u", TargetPos: 0}}
	if err := bad.Validate(src, tgt); err == nil {
		t.Error("out-of-range source position accepted")
	}
	bad = Correspondences{{SourceRel: "p", SourcePos: 0, TargetRel: "u", TargetPos: 7}}
	if err := bad.Validate(src, tgt); err == nil {
		t.Error("out-of-range target position accepted")
	}
	bad = Correspondences{{SourceRel: "zz", SourcePos: 0, TargetRel: "u", TargetPos: 0}}
	if err := bad.Validate(src, tgt); err == nil {
		t.Error("unknown source relation accepted")
	}
	bad = Correspondences{{SourceRel: "p", SourcePos: 0, TargetRel: "zz", TargetPos: 0}}
	if err := bad.Validate(src, tgt); err == nil {
		t.Error("unknown target relation accepted")
	}
}
