// Package schema models relational schemas for schema-mapping problems:
// relations with named attributes, primary keys, foreign keys, and
// inter-schema attribute correspondences (the metadata evidence used by
// Clio-style candidate generation).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Relation is a relation symbol with a fixed attribute list.
type Relation struct {
	Name  string
	Attrs []string
	// Key holds the positions (0-based) forming the primary key.
	// It may be empty when no key is declared.
	Key []int
}

// NewRelation builds a relation and validates attribute names.
func NewRelation(name string, attrs ...string) *Relation {
	return &Relation{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes of r.
func (r *Relation) Arity() int { return len(r.Attrs) }

// AttrPos returns the position of the named attribute, or -1.
func (r *Relation) AttrPos(name string) int {
	for i, a := range r.Attrs {
		if a == name {
			return i
		}
	}
	return -1
}

// WithKey sets the primary-key positions and returns r for chaining.
func (r *Relation) WithKey(pos ...int) *Relation {
	r.Key = append([]int(nil), pos...)
	return r
}

// String renders the relation as Name(attr1, attr2, ...).
func (r *Relation) String() string {
	return fmt.Sprintf("%s(%s)", r.Name, strings.Join(r.Attrs, ", "))
}

// Validate checks structural well-formedness of the relation.
func (r *Relation) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("schema: relation with empty name")
	}
	if len(r.Attrs) == 0 {
		return fmt.Errorf("schema: relation %s has no attributes", r.Name)
	}
	seen := make(map[string]bool, len(r.Attrs))
	for _, a := range r.Attrs {
		if a == "" {
			return fmt.Errorf("schema: relation %s has an empty attribute name", r.Name)
		}
		if seen[a] {
			return fmt.Errorf("schema: relation %s has duplicate attribute %q", r.Name, a)
		}
		seen[a] = true
	}
	for _, k := range r.Key {
		if k < 0 || k >= len(r.Attrs) {
			return fmt.Errorf("schema: relation %s key position %d out of range", r.Name, k)
		}
	}
	return nil
}

// ForeignKey declares that FromCols of FromRel reference ToCols of ToRel.
// Column lists are parallel and must have equal length.
type ForeignKey struct {
	FromRel  string
	FromCols []int
	ToRel    string
	ToCols   []int
}

// String renders the foreign key in a compact arrow form.
func (fk ForeignKey) String() string {
	return fmt.Sprintf("%s%v -> %s%v", fk.FromRel, fk.FromCols, fk.ToRel, fk.ToCols)
}

// Schema is an ordered collection of relations plus foreign keys.
type Schema struct {
	Name  string
	rels  map[string]*Relation
	order []string
	fks   []ForeignKey
}

// New creates an empty schema with the given name.
func New(name string) *Schema {
	return &Schema{Name: name, rels: make(map[string]*Relation)}
}

// AddRelation registers a relation; relation names must be unique.
func (s *Schema) AddRelation(r *Relation) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if _, dup := s.rels[r.Name]; dup {
		return fmt.Errorf("schema %s: duplicate relation %s", s.Name, r.Name)
	}
	s.rels[r.Name] = r
	s.order = append(s.order, r.Name)
	return nil
}

// MustAddRelation is AddRelation but panics on error; for tests and
// generators building schemas programmatically.
func (s *Schema) MustAddRelation(r *Relation) *Relation {
	if err := s.AddRelation(r); err != nil {
		panic(err)
	}
	return r
}

// Relation returns the named relation or nil.
func (s *Schema) Relation(name string) *Relation { return s.rels[name] }

// HasRelation reports whether the named relation exists.
func (s *Schema) HasRelation(name string) bool { _, ok := s.rels[name]; return ok }

// Relations returns all relations in insertion order.
func (s *Schema) Relations() []*Relation {
	out := make([]*Relation, 0, len(s.order))
	for _, n := range s.order {
		out = append(out, s.rels[n])
	}
	return out
}

// RelationNames returns the relation names in insertion order.
func (s *Schema) RelationNames() []string {
	return append([]string(nil), s.order...)
}

// Len returns the number of relations.
func (s *Schema) Len() int { return len(s.order) }

// AddFK registers a foreign key after validating endpoint relations,
// column positions and length agreement.
func (s *Schema) AddFK(fk ForeignKey) error {
	from := s.Relation(fk.FromRel)
	to := s.Relation(fk.ToRel)
	if from == nil {
		return fmt.Errorf("schema %s: fk from unknown relation %s", s.Name, fk.FromRel)
	}
	if to == nil {
		return fmt.Errorf("schema %s: fk to unknown relation %s", s.Name, fk.ToRel)
	}
	if len(fk.FromCols) == 0 || len(fk.FromCols) != len(fk.ToCols) {
		return fmt.Errorf("schema %s: fk %v has mismatched column lists", s.Name, fk)
	}
	for _, c := range fk.FromCols {
		if c < 0 || c >= from.Arity() {
			return fmt.Errorf("schema %s: fk %v column %d out of range for %s", s.Name, fk, c, fk.FromRel)
		}
	}
	for _, c := range fk.ToCols {
		if c < 0 || c >= to.Arity() {
			return fmt.Errorf("schema %s: fk %v column %d out of range for %s", s.Name, fk, c, fk.ToRel)
		}
	}
	s.fks = append(s.fks, fk)
	return nil
}

// MustAddFK is AddFK but panics on error.
func (s *Schema) MustAddFK(fk ForeignKey) {
	if err := s.AddFK(fk); err != nil {
		panic(err)
	}
}

// FKs returns all foreign keys.
func (s *Schema) FKs() []ForeignKey { return append([]ForeignKey(nil), s.fks...) }

// FKsFrom returns foreign keys whose source is the named relation.
func (s *Schema) FKsFrom(rel string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range s.fks {
		if fk.FromRel == rel {
			out = append(out, fk)
		}
	}
	return out
}

// FKsTo returns foreign keys whose target is the named relation.
func (s *Schema) FKsTo(rel string) []ForeignKey {
	var out []ForeignKey
	for _, fk := range s.fks {
		if fk.ToRel == rel {
			out = append(out, fk)
		}
	}
	return out
}

// String renders the schema, one relation per line, then foreign keys.
func (s *Schema) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "schema %s:\n", s.Name)
	for _, r := range s.Relations() {
		fmt.Fprintf(&b, "  %s\n", r)
	}
	for _, fk := range s.fks {
		fmt.Fprintf(&b, "  fk %s\n", fk)
	}
	return b.String()
}

// Correspondence links one source attribute to one target attribute.
// It is the unit of metadata evidence consumed by candidate generation.
type Correspondence struct {
	SourceRel string
	SourcePos int
	TargetRel string
	TargetPos int
}

// String renders the correspondence as src.rel[i] ~ tgt.rel[j].
func (c Correspondence) String() string {
	return fmt.Sprintf("%s[%d] ~ %s[%d]", c.SourceRel, c.SourcePos, c.TargetRel, c.TargetPos)
}

// Correspondences is a set of attribute correspondences with helpers
// used by candidate generation.
type Correspondences []Correspondence

// ForTargetRel returns the correspondences pointing into the named
// target relation.
func (cs Correspondences) ForTargetRel(rel string) Correspondences {
	var out Correspondences
	for _, c := range cs {
		if c.TargetRel == rel {
			out = append(out, c)
		}
	}
	return out
}

// ForSourceRel returns the correspondences leaving the named source
// relation.
func (cs Correspondences) ForSourceRel(rel string) Correspondences {
	var out Correspondences
	for _, c := range cs {
		if c.SourceRel == rel {
			out = append(out, c)
		}
	}
	return out
}

// SourceRels returns the distinct source relations, sorted.
func (cs Correspondences) SourceRels() []string {
	seen := make(map[string]bool)
	for _, c := range cs {
		seen[c.SourceRel] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// TargetRels returns the distinct target relations, sorted.
func (cs Correspondences) TargetRels() []string {
	seen := make(map[string]bool)
	for _, c := range cs {
		seen[c.TargetRel] = true
	}
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Dedup returns the correspondences with exact duplicates removed,
// preserving first-occurrence order.
func (cs Correspondences) Dedup() Correspondences {
	seen := make(map[Correspondence]bool, len(cs))
	out := make(Correspondences, 0, len(cs))
	for _, c := range cs {
		if !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

// Validate checks every correspondence against the two schemas.
func (cs Correspondences) Validate(src, tgt *Schema) error {
	for _, c := range cs {
		sr := src.Relation(c.SourceRel)
		if sr == nil {
			return fmt.Errorf("schema: correspondence %s: unknown source relation", c)
		}
		tr := tgt.Relation(c.TargetRel)
		if tr == nil {
			return fmt.Errorf("schema: correspondence %s: unknown target relation", c)
		}
		if c.SourcePos < 0 || c.SourcePos >= sr.Arity() {
			return fmt.Errorf("schema: correspondence %s: source position out of range", c)
		}
		if c.TargetPos < 0 || c.TargetPos >= tr.Arity() {
			return fmt.Errorf("schema: correspondence %s: target position out of range", c)
		}
	}
	return nil
}
