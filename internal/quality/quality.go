// Package quality is the repo's mapping-quality evaluation harness:
// the counterpart of internal/bench that measures *accuracy* instead
// of speed. It sweeps a matrix of ibench scenario cells — per
// primitive family (CP, ADD, DL, ADL, ME, VP, VNM) and the mixed
// seven-primitive workload, at S/M scales, across the standard noise
// levels of the paper's Table I — runs every registered solver on
// each cell through the core Solve API, and scores each selection
// with precision/recall/F1 against the cell's gold mapping at both
// the mapping level (selected tgds vs M_G up to logical equality) and
// the tuple level (data exchanged by the selection vs by M_G).
//
// cmd/qualityrun is the CLI front end; CI runs the full matrix on
// every PR and gates on the checked-in baseline (baseline.go), which
// makes silent accuracy regressions — a solver tweak that keeps the
// objective but drops the gold mapping — a failing check instead of a
// surprise at paper-comparison time.
//
// Runs are deterministic: cells pin their seeds, solvers run without
// wall-clock budgets (a budget truncation point depends on machine
// speed), and solvers that cannot finish a cell deterministically
// (exhaustive search above its candidate cap) are recorded as skipped
// rather than truncated.
package quality

import (
	"context"
	"fmt"
	"runtime"

	"schemamap/internal/core"
	"schemamap/internal/ibench"
	"schemamap/internal/metrics"
)

// Mixed names the all-seven-primitives family in cell names and
// reports.
const Mixed = "mixed"

// Cell is one matrix cell: a fully determined scenario configuration.
// Equal cells generate equal scenarios.
type Cell struct {
	// Name is "<family>-<scale>-<noise>", e.g. "CP-S-mid".
	Name string `json:"name"`
	// Family is a primitive name or Mixed.
	Family string `json:"family"`
	// Scale is "S" or "M".
	Scale string `json:"scale"`
	// Noise is the cell's point on the Table I axes.
	Noise ibench.NoiseLevel `json:"noise"`
	// N is the number of primitive instances; Rows the tuples per
	// source relation.
	N    int `json:"n"`
	Rows int `json:"rows"`
	// Seed drives all scenario randomness.
	Seed int64 `json:"seed"`
}

// Config builds the cell's ibench configuration.
func (c Cell) Config() (ibench.Config, error) {
	var cfg ibench.Config
	if c.Family == Mixed {
		cfg = ibench.DefaultConfig(c.N, c.Seed)
	} else {
		p, err := ibench.ParsePrimitive(c.Family)
		if err != nil {
			return ibench.Config{}, err
		}
		cfg = ibench.SingleFamilyConfig(p, c.N, c.Seed)
	}
	cfg.Rows = c.Rows
	return cfg.WithNoise(c.Noise), nil
}

// cell builds a matrix cell with its deterministic seed. famIdx is
// the primitive's index (7 for mixed) and scaleIdx 0 for S, 1 for M;
// the seed formula is position-independent so adding cells to the
// matrix never reseeds existing ones (which would invalidate the
// checked-in baseline).
func cell(family, scale string, famIdx, scaleIdx, levelIdx int, level ibench.NoiseLevel, n, rows int) Cell {
	return Cell{
		Name:   fmt.Sprintf("%s-%s-%s", family, scale, level.Name),
		Family: family,
		Scale:  scale,
		Noise:  level,
		N:      n,
		Rows:   rows,
		Seed:   int64(1000 + 100*famIdx + 10*levelIdx + scaleIdx),
	}
}

// Matrix returns the standard quality grid:
//
//   - each of the seven primitive families alone, at the S scale
//     (N=4, Rows=8), under the none/mid/high noise levels — 21 cells
//     attributing accuracy to one ambiguity pattern at a time;
//   - the mixed seven-primitive workload at the S scale (N=7,
//     Rows=10) under all four noise levels — 4 cells matching the
//     bench harness's S scenario shape;
//   - the mixed workload at the M scale (N=14, Rows=16) under the mid
//     level — 1 cell catching regressions that only appear once
//     candidate sets are large enough to interact.
//
// 26 cells total. The matrix is append-only: cells may be added, but
// renaming or reseeding existing ones invalidates the checked-in
// baseline.
func Matrix() []Cell {
	levels := ibench.StandardNoiseLevels()
	var cells []Cell
	for fi, p := range ibench.AllPrimitives {
		// Single-family cells skip the "low" level (1); the seed formula
		// uses the level's StandardNoiseLevels index, so it could join
		// later without reseeding these.
		for _, li := range []int{0, 2, 3} {
			cells = append(cells, cell(p.String(), "S", fi, 0, li, levels[li], 4, 8))
		}
	}
	for li, level := range levels {
		cells = append(cells, cell(Mixed, "S", len(ibench.AllPrimitives), 0, li, level, 7, 10))
	}
	cells = append(cells, cell(Mixed, "M", len(ibench.AllPrimitives), 1, 2, levels[2], 14, 16))
	return cells
}

// CellsNamed filters the standard matrix by name; an empty list
// returns the full matrix.
func CellsNamed(names ...string) ([]Cell, error) {
	all := Matrix()
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Cell, len(all))
	for _, c := range all {
		byName[c.Name] = c
	}
	out := make([]Cell, 0, len(names))
	for _, n := range names {
		c, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("quality: unknown cell %q", n)
		}
		out = append(out, c)
	}
	return out, nil
}

// CellResult is one (solver, cell) quality measurement.
type CellResult struct {
	Solver string `json:"solver"`
	Cell   string `json:"cell"`
	Family string `json:"family"`
	Scale  string `json:"scale"`
	// Noise echoes the cell's noise level.
	Noise ibench.NoiseLevel `json:"noise"`
	Seed  int64             `json:"seed"`
	// Scenario size.
	Candidates int `json:"candidates"`
	GoldTGDs   int `json:"goldTGDs"`
	JTuples    int `json:"jTuples"`
	// Selected is the number of candidates the solver picked.
	Selected int `json:"selected"`
	// Mapping-level precision/recall/F1: selected tgds vs the gold
	// mapping, up to logical equality.
	MappingPrecision float64 `json:"mappingPrecision"`
	MappingRecall    float64 `json:"mappingRecall"`
	MappingF1        float64 `json:"mappingF1"`
	// Tuple-level precision/recall/F1: data exchanged by the selected
	// mapping vs by the gold mapping, up to null renaming.
	TuplePrecision float64 `json:"tuplePrecision"`
	TupleRecall    float64 `json:"tupleRecall"`
	TupleF1        float64 `json:"tupleF1"`
	// Objective context: F at the selection and at the gold mapping.
	Objective     float64 `json:"objective"`
	GoldObjective float64 `json:"goldObjective"`
	Iterations    int     `json:"iterations"`
	// Skipped carries the reason a solver did not run this cell
	// (e.g. the exhaustive solver's deterministic candidate cap); all
	// measurements are zero then.
	Skipped string `json:"skipped,omitempty"`
}

// Report is the content of one QUALITY_<solver>.json file.
type Report struct {
	Solver    string       `json:"solver"`
	GoVersion string       `json:"goVersion"`
	Cells     []CellResult `json:"cells"`
}

// DefaultExhaustiveCellCap bounds the candidate count the quality
// harness hands to exhaustive search. The solver's own cap (128) only
// bounds its bitset width; branch-and-bound beyond ~two dozen
// candidates can take minutes, and truncating it with a wall-clock
// budget would make the measured F1 machine-dependent. Cells above
// the cap record a skip instead.
const DefaultExhaustiveCellCap = 24

// Options configure a harness run.
type Options struct {
	// Cells to run (nil = the full standard Matrix).
	Cells []Cell
	// Solvers to run (nil = every registered solver, core.Names()).
	Solvers []string
	// Parallelism is passed to every solve via WithParallelism
	// (0 = GOMAXPROCS); results are independent of it.
	Parallelism int
	// CandidateCaps bounds the candidate count per solver name; cells
	// above a solver's cap are recorded as skipped for it. Nil gets
	// {"exhaustive": DefaultExhaustiveCellCap}; an explicit empty map
	// disables all caps.
	CandidateCaps map[string]int
	// Progress, when non-nil, receives one line per measurement.
	Progress func(string)
}

// Run executes the harness and returns one report per solver, in
// solver order. The scenario and prepared problem of each cell are
// shared across solvers (preparation is solver-independent), so a run
// costs one generation + preparation per cell plus one solve per
// (solver, cell).
func Run(ctx context.Context, opt Options) ([]*Report, error) {
	cells := opt.Cells
	if len(cells) == 0 {
		cells = Matrix()
	}
	solvers := opt.Solvers
	if len(solvers) == 0 {
		solvers = core.Names()
	}
	caps := opt.CandidateCaps
	if caps == nil {
		caps = map[string]int{"exhaustive": DefaultExhaustiveCellCap}
	}

	reports := make(map[string]*Report, len(solvers))
	var order []*Report
	for _, name := range solvers {
		if _, err := core.Get(name); err != nil {
			return nil, err
		}
		r := &Report{Solver: name, GoVersion: runtime.Version(), Cells: []CellResult{}}
		reports[name] = r
		order = append(order, r)
	}

	for _, c := range cells {
		cfg, err := c.Config()
		if err != nil {
			return nil, fmt.Errorf("quality: cell %s: %w", c.Name, err)
		}
		sc, err := ibench.Generate(cfg)
		if err != nil {
			return nil, fmt.Errorf("quality: cell %s: %w", c.Name, err)
		}
		p := core.NewProblem(sc.I, sc.J, sc.Candidates)
		p.PrepareN(opt.Parallelism)
		goldObjective := p.Objective(sc.GoldSelection()).Total()

		for _, name := range solvers {
			res := CellResult{
				Solver: name, Cell: c.Name, Family: c.Family, Scale: c.Scale,
				Noise: c.Noise, Seed: c.Seed,
				Candidates: len(sc.Candidates), GoldTGDs: len(sc.Gold), JTuples: sc.J.Len(),
			}
			if limit, capped := caps[name]; capped && len(sc.Candidates) > limit {
				res.Skipped = fmt.Sprintf("candidate count %d exceeds deterministic cap %d", len(sc.Candidates), limit)
			} else if err := scoreCell(ctx, name, p, sc, goldObjective, opt.Parallelism, &res); err != nil {
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				// A solver declining a cell (e.g. the exhaustive
				// solver's own candidate cap) is data, not a harness
				// failure.
				res.Skipped = err.Error()
			}
			reports[name].Cells = append(reports[name].Cells, res)
			if opt.Progress != nil {
				line := fmt.Sprintf("%-14s %-12s |C|=%3d sel=%3d mapF1=%.3f tupF1=%.3f F=%.4g (gold %.4g)",
					c.Name, name, res.Candidates, res.Selected,
					res.MappingF1, res.TupleF1, res.Objective, res.GoldObjective)
				if res.Skipped != "" {
					line = fmt.Sprintf("%-14s %-12s skipped: %s", c.Name, name, res.Skipped)
				}
				opt.Progress(line)
			}
		}
	}
	return order, nil
}

// scoreCell solves one cell with one solver and fills in the quality
// measurements.
func scoreCell(ctx context.Context, name string, p *core.Problem, sc *ibench.Scenario, goldObjective float64, parallelism int, res *CellResult) error {
	solver, err := core.Get(name)
	if err != nil {
		return err
	}
	sel, err := solver.Solve(ctx, p, core.WithParallelism(parallelism))
	if err != nil {
		return err
	}
	selected := p.SelectedMapping(sel.Chosen)
	m := metrics.MappingPRF(selected, sc.Gold)
	t := metrics.TuplePRF(sc.I, selected, sc.Gold)
	res.Selected = sel.Count()
	res.MappingPrecision, res.MappingRecall, res.MappingF1 = m.Precision, m.Recall, m.F1()
	res.TuplePrecision, res.TupleRecall, res.TupleF1 = t.Precision, t.Recall, t.F1()
	res.Objective = sel.Objective.Total()
	res.GoldObjective = goldObjective
	res.Iterations = sel.Iterations
	return nil
}
