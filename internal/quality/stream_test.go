package quality

import (
	"context"
	"math"
	"reflect"
	"testing"

	"schemamap/internal/core"
	"schemamap/internal/ibench"
	"schemamap/internal/metrics"
)

// Streaming ingestion must not change solution quality: on noisy
// matrix cells, a solution reached by batched AppendTarget +
// warm-start re-solves attains exactly the cold-solve objective, and
// the exchanged data scores the same tuple-level F1. (The *selection*
// may tie-differ: warm and cold fixed points can pick different
// candidate sets with equal Eq. (9) value — the objective cannot
// distinguish them — so mapping-level F1 is compared only when the
// selections agree.)
func TestStreamingSolveQualityParity(t *testing.T) {
	ctx := context.Background()
	cells, err := CellsNamed("mixed-S-mid", "VP-S-high")
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range cells {
		cfg, err := cell.Config()
		if err != nil {
			t.Fatal(err)
		}
		sc, err := ibench.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		stream, err := ibench.SplitTarget(sc, ibench.StreamConfig{Batches: 4, Seed: cell.Seed + 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"greedy", "collective"} {
			solver, err := core.Get(name)
			if err != nil {
				t.Fatal(err)
			}
			// Cold: one solve over the full target.
			coldP := core.NewProblem(sc.I, sc.J.Clone(), sc.Candidates)
			coldSel, err := solver.Solve(ctx, coldP)
			if err != nil {
				t.Fatalf("%s/%s cold: %v", cell.Name, name, err)
			}
			coldM := metrics.MappingPRF(coldP.SelectedMapping(coldSel.Chosen), sc.Gold)
			coldT := metrics.TuplePRF(sc.I, coldP.SelectedMapping(coldSel.Chosen), sc.Gold)

			// Streamed: ingest batches with warm-started re-solves.
			p := core.NewProblem(sc.I, stream.Initial.Clone(), sc.Candidates)
			p.PrepareStreaming(0)
			prev, err := solver.Solve(ctx, p)
			if err != nil {
				t.Fatalf("%s/%s initial: %v", cell.Name, name, err)
			}
			for _, batch := range stream.Batches {
				if _, err := p.AppendTarget(batch); err != nil {
					t.Fatal(err)
				}
				prev, err = solver.Solve(ctx, p, core.WithWarmStart(prev))
				if err != nil {
					t.Fatalf("%s/%s warm: %v", cell.Name, name, err)
				}
			}
			warmM := metrics.MappingPRF(p.SelectedMapping(prev.Chosen), sc.Gold)
			warmT := metrics.TuplePRF(sc.I, p.SelectedMapping(prev.Chosen), sc.Gold)

			if math.Abs(prev.Objective.Total()-coldSel.Objective.Total()) > 1e-9 {
				t.Errorf("%s/%s: streamed objective %v != cold %v",
					cell.Name, name, prev.Objective.Total(), coldSel.Objective.Total())
			}
			// Cross-check the streamed selection against the cold
			// problem's evidence: same F either way.
			if got := coldP.Objective(prev.Chosen).Total(); math.Abs(got-prev.Objective.Total()) > 1e-9 {
				t.Errorf("%s/%s: streamed selection scores %v on cold evidence, %v on streamed",
					cell.Name, name, got, prev.Objective.Total())
			}
			if math.Abs(warmT.F1()-coldT.F1()) > 1e-9 {
				t.Errorf("%s/%s: streamed tuple F1 %.4f != cold %.4f",
					cell.Name, name, warmT.F1(), coldT.F1())
			}
			sameSelection := reflect.DeepEqual(prev.Chosen, coldSel.Chosen)
			if sameSelection && math.Abs(warmM.F1()-coldM.F1()) > 1e-9 {
				t.Errorf("%s/%s: same selection, different mapping F1 %.4f vs %.4f",
					cell.Name, name, warmM.F1(), coldM.F1())
			}
		}
	}
}
