package quality

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Baseline is the checked-in accuracy reference the CI quality job
// gates against. Unlike the bench baseline, no normalisation is
// needed: quality runs are seed-pinned and budget-free, so the F1
// values are pure functions of the code and regenerate bit-identically
// on any machine — the gate tolerance exists only to absorb benign
// cross-architecture floating-point divergence in the ADMM relaxation
// (e.g. fused multiply-add on arm64), not measurement noise.
type Baseline struct {
	// Cells maps solver name -> cell name -> recorded scores. Cells a
	// solver skipped when the baseline was refreshed are absent, so
	// they stay ungated until a refresh records them.
	Cells map[string]map[string]CellScore `json:"cells"`
	// RecordedOn documents the recording toolchain (informational).
	RecordedOn string `json:"recordedOn,omitempty"`
}

// CellScore is the gated part of one (solver, cell) measurement.
type CellScore struct {
	MappingF1 float64 `json:"mappingF1"`
	TupleF1   float64 `json:"tupleF1"`
}

// BaselineFrom extracts a baseline from a harness run: every
// non-skipped (solver, cell) measurement is recorded. When solvers is
// non-empty it restricts the recorded set.
func BaselineFrom(reports []*Report, solvers ...string) *Baseline {
	keep := make(map[string]bool, len(solvers))
	for _, s := range solvers {
		keep[s] = true
	}
	b := &Baseline{Cells: make(map[string]map[string]CellScore)}
	for _, r := range reports {
		if len(keep) > 0 && !keep[r.Solver] {
			continue
		}
		for _, res := range r.Cells {
			if res.Skipped != "" {
				continue
			}
			cells := b.Cells[r.Solver]
			if cells == nil {
				cells = make(map[string]CellScore)
				b.Cells[r.Solver] = cells
			}
			cells[res.Cell] = CellScore{MappingF1: res.MappingF1, TupleF1: res.TupleF1}
		}
	}
	return b
}

// Restrict returns a copy of the baseline gating only the named
// solvers and cells; empty arguments leave that axis unrestricted.
// Use it to gate a partial run (qualityrun -solvers/-cells) against
// the full checked-in baseline: CheckBaseline deliberately fails on
// gated-but-unmeasured cells, so without restriction a subset run
// could never pass. CI runs the full matrix and must NOT restrict —
// that is what makes a solver vanishing from the registry a gate
// failure instead of a silent pass.
func (b *Baseline) Restrict(solvers []string, cells []Cell) *Baseline {
	keepSolver := make(map[string]bool, len(solvers))
	for _, s := range solvers {
		keepSolver[s] = true
	}
	keepCell := make(map[string]bool, len(cells))
	for _, c := range cells {
		keepCell[c.Name] = true
	}
	out := &Baseline{Cells: make(map[string]map[string]CellScore), RecordedOn: b.RecordedOn}
	//lint:commutative rebuilds a map keyed by the iteration keys; each (solver, cell) is written once
	for solver, gated := range b.Cells {
		if len(keepSolver) > 0 && !keepSolver[solver] {
			continue
		}
		//lint:commutative filtered per-key insert into out.Cells[solver]; each cell is written once
		for cellName, score := range gated {
			if len(keepCell) > 0 && !keepCell[cellName] {
				continue
			}
			if out.Cells[solver] == nil {
				out.Cells[solver] = make(map[string]CellScore)
			}
			out.Cells[solver][cellName] = score
		}
	}
	return out
}

// LoadBaseline reads a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("quality: baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes a baseline file (indented JSON; map keys are
// sorted by encoding/json, so a deterministic run writes
// byte-identical baselines).
func WriteBaseline(path string, b *Baseline) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Merge overwrites b's entries with every (solver, cell) score that
// update records, keeping entries update does not cover, and adopts
// update's RecordedOn. It is how a subset run refreshes the baseline
// without clobbering the cells it did not measure.
func (b *Baseline) Merge(update *Baseline) {
	if b.Cells == nil {
		b.Cells = make(map[string]map[string]CellScore)
	}
	//lint:commutative per-key overwrite into b.Cells; each (solver, cell) is written once
	for solver, gated := range update.Cells {
		if b.Cells[solver] == nil {
			b.Cells[solver] = make(map[string]CellScore)
		}
		for cellName, score := range gated {
			b.Cells[solver][cellName] = score
		}
	}
	if update.RecordedOn != "" {
		b.RecordedOn = update.RecordedOn
	}
}

// CheckBaseline compares a run against the baseline: every (solver,
// cell) score it records must be matched by a measurement whose
// mapping-level and tuple-level F1 are each no more than tolerance
// below the recorded value. Tolerance 0 is a valid exact gate
// (quality runs are deterministic); negative gets the 0.01 default. Improvements
// always pass — refresh the baseline to lock them in. A gated cell
// that is skipped, erroring, or absent from the run fails too: a
// green gate must mean "measured and within tolerance", never "could
// not measure". Solvers or cells absent from the baseline pass (new
// matrix cells gate only after a refresh). Returns one error
// summarising all failures, or nil.
func CheckBaseline(b *Baseline, reports []*Report, tolerance float64) error {
	if tolerance < 0 {
		tolerance = 0.01
	}
	byName := make(map[string]*Report, len(reports))
	for _, r := range reports {
		byName[r.Solver] = r
	}
	var failures []string
	for _, solver := range sortedKeys(b.Cells) {
		gated := b.Cells[solver]
		r := byName[solver]
		for _, cellName := range sortedKeys(gated) {
			want := gated[cellName]
			res, found := findCell(r, cellName)
			switch {
			case !found:
				failures = append(failures, fmt.Sprintf(
					"%s@%s: gated cell has no measurement in the run", solver, cellName))
			case res.Skipped != "":
				failures = append(failures, fmt.Sprintf(
					"%s@%s: gated cell skipped: %s", solver, cellName, res.Skipped))
			default:
				if res.MappingF1 < want.MappingF1-tolerance {
					failures = append(failures, fmt.Sprintf(
						"%s@%s: mapping F1 %.4f < baseline %.4f − tolerance %.4f",
						solver, cellName, res.MappingF1, want.MappingF1, tolerance))
				}
				if res.TupleF1 < want.TupleF1-tolerance {
					failures = append(failures, fmt.Sprintf(
						"%s@%s: tuple F1 %.4f < baseline %.4f − tolerance %.4f",
						solver, cellName, res.TupleF1, want.TupleF1, tolerance))
				}
			}
		}
	}
	if len(failures) > 0 {
		msg := "quality: F1 gate failed:"
		for _, f := range failures {
			msg += "\n  " + f
		}
		return fmt.Errorf("%s", msg)
	}
	return nil
}

// findCell locates a cell measurement in a report (nil-safe).
func findCell(r *Report, cellName string) (CellResult, bool) {
	if r == nil {
		return CellResult{}, false
	}
	for _, res := range r.Cells {
		if res.Cell == cellName {
			return res, true
		}
	}
	return CellResult{}, false
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
