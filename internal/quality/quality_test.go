package quality

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"schemamap/internal/core"
)

// tinyCells is a three-cell slice of the standard matrix (one
// single-family cell, one clean mixed cell, one noisy mixed cell) so
// harness tests run in milliseconds.
func tinyCells(t *testing.T) []Cell {
	t.Helper()
	cells, err := CellsNamed("CP-S-none", "mixed-S-none", "mixed-S-mid")
	if err != nil {
		t.Fatal(err)
	}
	return cells
}

// TestMatrixShape pins the acceptance-relevant properties of the
// standard matrix: at least 10 cells spanning at least 3 noise
// levels, every primitive family alone as well as mixed, and both
// scales; names and seeds unique (the baseline is keyed by name, and
// two cells sharing a seed+config would be the same scenario twice).
func TestMatrixShape(t *testing.T) {
	cells := Matrix()
	if len(cells) < 10 {
		t.Fatalf("matrix has %d cells, want ≥ 10", len(cells))
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	levels := map[string]bool{}
	families := map[string]bool{}
	scales := map[string]bool{}
	for _, c := range cells {
		if names[c.Name] {
			t.Errorf("duplicate cell name %s", c.Name)
		}
		names[c.Name] = true
		if seeds[c.Seed] {
			t.Errorf("duplicate cell seed %d (%s)", c.Seed, c.Name)
		}
		seeds[c.Seed] = true
		levels[c.Noise.Name] = true
		families[c.Family] = true
		scales[c.Scale] = true
		if _, err := c.Config(); err != nil {
			t.Errorf("cell %s: %v", c.Name, err)
		}
	}
	if len(levels) < 3 {
		t.Errorf("matrix spans %d noise levels, want ≥ 3", len(levels))
	}
	for _, fam := range []string{"CP", "ADD", "DL", "ADL", "ME", "VP", "VNM", Mixed} {
		if !families[fam] {
			t.Errorf("matrix missing family %s", fam)
		}
	}
	if !scales["S"] || !scales["M"] {
		t.Errorf("matrix scales = %v, want S and M", scales)
	}
}

func TestCellsNamed(t *testing.T) {
	all, err := CellsNamed()
	if err != nil || len(all) != len(Matrix()) {
		t.Fatalf("CellsNamed() = %d cells, %v; want full matrix", len(all), err)
	}
	if _, err := CellsNamed("no-such-cell"); err == nil {
		t.Fatal("unknown cell name must fail")
	}
}

// TestRunAllSolvers runs the harness over every registered solver on
// the tiny cell set and checks each report is complete.
func TestRunAllSolvers(t *testing.T) {
	cells := tinyCells(t)
	reports, err := Run(context.Background(), Options{Cells: cells, Parallelism: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(reports) != len(core.Names()) {
		t.Fatalf("got %d reports, want one per registered solver (%d)", len(reports), len(core.Names()))
	}
	for _, r := range reports {
		if len(r.Cells) != len(cells) {
			t.Fatalf("%s: got %d cell results, want %d", r.Solver, len(r.Cells), len(cells))
		}
		for _, res := range r.Cells {
			if res.Skipped != "" {
				t.Errorf("%s@%s skipped on tiny cell: %s", r.Solver, res.Cell, res.Skipped)
				continue
			}
			if res.Candidates <= 0 || res.GoldTGDs <= 0 || res.JTuples <= 0 {
				t.Errorf("%s@%s: incomplete result %+v", r.Solver, res.Cell, res)
			}
			for what, f1 := range map[string]float64{"mapping": res.MappingF1, "tuple": res.TupleF1} {
				if f1 < 0 || f1 > 1 {
					t.Errorf("%s@%s: %s F1 %v outside [0,1]", r.Solver, res.Cell, what, f1)
				}
			}
			if res.Selected == 0 && res.MappingF1 != 0 {
				t.Errorf("%s@%s: empty selection with nonzero mapping F1", r.Solver, res.Cell)
			}
		}
	}
}

// TestRunDeterminism asserts the acceptance criterion directly: two
// harness runs with the same options produce bit-identical quality
// metrics (no wall-clock budgets, pinned seeds, deterministic
// solvers).
func TestRunDeterminism(t *testing.T) {
	opt := Options{Cells: tinyCells(t), Parallelism: 2}
	first, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatalf("first Run: %v", err)
	}
	// Different parallelism on the rerun: results must not depend on it.
	opt.Parallelism = 1
	second, err := Run(context.Background(), opt)
	if err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("quality metrics differ across runs:\nfirst  %+v\nsecond %+v", first, second)
	}
}

// TestExhaustiveCapSkips checks that cells above a solver's candidate
// cap are recorded as deterministic skips, not run or errored.
func TestExhaustiveCapSkips(t *testing.T) {
	cells := tinyCells(t)
	reports, err := Run(context.Background(), Options{
		Cells:         cells,
		Solvers:       []string{"greedy"},
		CandidateCaps: map[string]int{"greedy": 1},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, res := range reports[0].Cells {
		if res.Skipped == "" {
			t.Errorf("%s: cap 1 should skip every cell, got %+v", res.Cell, res)
		}
		if res.MappingF1 != 0 || res.TupleF1 != 0 {
			t.Errorf("%s: skipped cell carries measurements", res.Cell)
		}
	}
}

func TestRunUnknownSolver(t *testing.T) {
	if _, err := Run(context.Background(), Options{Solvers: []string{"nope"}}); err == nil {
		t.Fatal("unknown solver must fail")
	}
}

func TestReportRoundTrip(t *testing.T) {
	reports, err := Run(context.Background(), Options{
		Cells:   tinyCells(t),
		Solvers: []string{"greedy"},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	dir := t.TempDir()
	paths, err := WriteReports(dir, reports)
	if err != nil {
		t.Fatalf("WriteReports: %v", err)
	}
	if len(paths) != 1 || filepath.Base(paths[0]) != "QUALITY_greedy.json" {
		t.Fatalf("unexpected paths %v", paths)
	}
	got, err := LoadReport(paths[0])
	if err != nil {
		t.Fatalf("LoadReport: %v", err)
	}
	if !reflect.DeepEqual(got, reports[0]) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, reports[0])
	}
}
