package quality

import (
	"bytes"
	"context"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// fakeReports builds a single-solver report set with the given F1
// scores on one cell.
func fakeReports(mappingF1, tupleF1 float64) []*Report {
	return []*Report{{
		Solver: "collective",
		Cells: []CellResult{{
			Solver: "collective", Cell: "mixed-S-mid",
			MappingF1: mappingF1, TupleF1: tupleF1,
		}},
	}}
}

// TestBaselineGate is the synthetic-regression demonstration of the
// CI quality gate: a run whose F1 drops beyond tolerance on any
// gated cell fails CheckBaseline.
func TestBaselineGate(t *testing.T) {
	base := &Baseline{Cells: map[string]map[string]CellScore{
		"collective": {"mixed-S-mid": {MappingF1: 0.9, TupleF1: 0.95}},
	}}
	if err := CheckBaseline(base, fakeReports(0.9, 0.95), 0.01); err != nil {
		t.Errorf("at baseline: %v", err)
	}
	if err := CheckBaseline(base, fakeReports(0.895, 0.95), 0.01); err != nil {
		t.Errorf("drop within tolerance must pass: %v", err)
	}
	if err := CheckBaseline(base, fakeReports(1.0, 1.0), 0.01); err != nil {
		t.Errorf("improvement must pass: %v", err)
	}
	// The synthetic regression: mapping F1 0.9 → 0.8 fails the gate.
	err := CheckBaseline(base, fakeReports(0.8, 0.95), 0.01)
	if err == nil {
		t.Fatal("mapping F1 regression beyond tolerance must fail")
	}
	if !strings.Contains(err.Error(), "mapping F1") || !strings.Contains(err.Error(), "mixed-S-mid") {
		t.Errorf("failure must name the metric and cell: %v", err)
	}
	// Tuple-level regression fails independently.
	if err := CheckBaseline(base, fakeReports(0.9, 0.5), 0.01); err == nil {
		t.Error("tuple F1 regression beyond tolerance must fail")
	}
	// A green gate must mean "measured and within tolerance": a gated
	// cell that is skipped or absent fails rather than passing
	// vacuously.
	skipped := fakeReports(0, 0)
	skipped[0].Cells[0].Skipped = "solver exploded"
	if err := CheckBaseline(base, skipped, 0.01); err == nil {
		t.Error("skipped gated cell must fail")
	}
	offCell := fakeReports(1, 1)
	offCell[0].Cells[0].Cell = "CP-S-none"
	if err := CheckBaseline(base, offCell, 0.01); err == nil {
		t.Error("gated cell missing from the run must fail")
	}
	if err := CheckBaseline(base, nil, 0.01); err == nil {
		t.Error("empty run must fail")
	}
	// Solvers absent from the baseline pass (gate only after refresh).
	withNew := append(fakeReports(0.9, 0.95), &Report{
		Solver: "newsolver",
		Cells:  []CellResult{{Solver: "newsolver", Cell: "mixed-S-mid", MappingF1: 0, TupleF1: 0}},
	})
	if err := CheckBaseline(base, withNew, 0.01); err != nil {
		t.Errorf("unlisted solver must pass: %v", err)
	}
}

// TestBaselineFrom checks skipped cells stay unrecorded and the
// solver filter applies.
func TestBaselineFrom(t *testing.T) {
	reports := fakeReports(0.9, 0.95)
	reports[0].Cells = append(reports[0].Cells, CellResult{
		Solver: "collective", Cell: "mixed-M-mid", Skipped: "too big",
	})
	b := BaselineFrom(reports)
	if len(b.Cells["collective"]) != 1 {
		t.Fatalf("baseline records %d cells, want 1 (skips excluded): %+v", len(b.Cells["collective"]), b)
	}
	if _, ok := b.Cells["collective"]["mixed-M-mid"]; ok {
		t.Error("skipped cell must not be recorded")
	}
	if got := BaselineFrom(reports, "othersolver"); len(got.Cells) != 0 {
		t.Errorf("solver filter ignored: %+v", got)
	}
}

// TestRestrict checks the subset-gating contract: a restricted
// baseline gates only the named solvers/cells, so a partial
// qualityrun can pass against the full checked-in baseline, while an
// unrestricted gate still fails on unmeasured cells.
func TestRestrict(t *testing.T) {
	base := &Baseline{Cells: map[string]map[string]CellScore{
		"collective": {"mixed-S-mid": {MappingF1: 0.9, TupleF1: 0.9}, "CP-S-none": {MappingF1: 1, TupleF1: 1}},
		"greedy":     {"mixed-S-mid": {MappingF1: 0.9, TupleF1: 0.9}},
	}, RecordedOn: "rec"}
	// A collective-only run fails the full gate but passes restricted.
	run := fakeReports(0.9, 0.9)
	if err := CheckBaseline(base, run, 0.01); err == nil {
		t.Fatal("partial run must fail the unrestricted gate")
	}
	cells, err := CellsNamed("mixed-S-mid")
	if err != nil {
		t.Fatal(err)
	}
	restricted := base.Restrict([]string{"collective"}, cells)
	if err := CheckBaseline(restricted, run, 0.01); err != nil {
		t.Errorf("restricted gate must pass: %v", err)
	}
	if restricted.RecordedOn != "rec" {
		t.Error("Restrict dropped RecordedOn")
	}
	// Empty arguments leave the baseline unrestricted.
	full := base.Restrict(nil, nil)
	if !reflect.DeepEqual(full.Cells, base.Cells) {
		t.Errorf("Restrict(nil, nil) changed the gated set: %+v", full.Cells)
	}
	// Restriction must not mutate the original.
	if len(base.Cells["collective"]) != 2 || len(base.Cells["greedy"]) != 1 {
		t.Error("Restrict mutated its receiver")
	}
	// A regression inside the restricted scope still fails.
	if err := CheckBaseline(restricted, fakeReports(0.5, 0.9), 0.01); err == nil {
		t.Error("restricted gate must still catch regressions")
	}
}

// TestMerge checks subset-refresh semantics: merged entries
// overwrite, unmeasured entries survive.
func TestMerge(t *testing.T) {
	b := &Baseline{Cells: map[string]map[string]CellScore{
		"collective": {"a": {MappingF1: 0.5, TupleF1: 0.5}, "b": {MappingF1: 0.6, TupleF1: 0.6}},
	}, RecordedOn: "old"}
	b.Merge(&Baseline{Cells: map[string]map[string]CellScore{
		"collective": {"a": {MappingF1: 0.9, TupleF1: 0.9}},
		"greedy":     {"c": {MappingF1: 1, TupleF1: 1}},
	}, RecordedOn: "new"})
	if got := b.Cells["collective"]["a"]; got.MappingF1 != 0.9 {
		t.Errorf("merged entry not overwritten: %+v", got)
	}
	if got := b.Cells["collective"]["b"]; got.MappingF1 != 0.6 {
		t.Errorf("unmeasured entry clobbered: %+v", got)
	}
	if _, ok := b.Cells["greedy"]["c"]; !ok {
		t.Error("new solver entry not merged")
	}
	if b.RecordedOn != "new" {
		t.Errorf("RecordedOn = %q", b.RecordedOn)
	}
}

// TestRunCLIRefresh pins the -update-baseline clobber protection: a
// subset refresh merges into the existing baseline (entries it did
// not measure survive and stay gated), while a full refresh replaces
// the file (stale entries drop out).
func TestRunCLIRefresh(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "baseline.json")
	stale := &Baseline{Cells: map[string]map[string]CellScore{
		"collective": {"no-such-cell": {MappingF1: 1, TupleF1: 1}},
	}}
	if err := WriteBaseline(path, stale); err != nil {
		t.Fatal(err)
	}
	cfg := CLIConfig{
		Options:        Options{Solvers: []string{"greedy"}, Cells: tinyCells(t)},
		OutDir:         dir,
		BaselinePath:   path,
		UpdateBaseline: true,
		Stdout:         io.Discard,
		Stderr:         io.Discard,
	}
	if code := RunCLI(context.Background(), cfg); code != 0 {
		t.Fatalf("subset refresh exit %d", code)
	}
	merged, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := merged.Cells["collective"]["no-such-cell"]; !ok {
		t.Error("subset refresh clobbered an unmeasured solver's entries")
	}
	if len(merged.Cells["greedy"]) != len(cfg.Cells) {
		t.Errorf("subset refresh recorded %d greedy cells, want %d", len(merged.Cells["greedy"]), len(cfg.Cells))
	}
	// Full refresh replaces: the stale entry must be gone.
	full := cfg
	full.Options = Options{Parallelism: 2}
	if code := RunCLI(context.Background(), full); code != 0 {
		t.Fatalf("full refresh exit %d", code)
	}
	replaced, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := replaced.Cells["collective"]["no-such-cell"]; ok {
		t.Error("full refresh kept a stale entry")
	}
	// The refreshed baseline gates its own rerun, exact tolerance.
	gate := full
	gate.UpdateBaseline = false
	gate.Tolerance = 0
	if code := RunCLI(context.Background(), gate); code != 0 {
		t.Errorf("self-gate at tolerance 0 exit %d", code)
	}
	// And a tampered baseline fails with exit code 2.
	replaced.Cells["greedy"]["mixed-S-mid"] = CellScore{MappingF1: 1.5, TupleF1: 1.5}
	if err := WriteBaseline(path, replaced); err != nil {
		t.Fatal(err)
	}
	if code := RunCLI(context.Background(), gate); code != 2 {
		t.Errorf("tampered baseline exit %d, want 2", code)
	}
}

// TestBaselineRoundTrip runs the real harness on tiny cells and
// checks the baseline self-gates, round-trips, and writes
// byte-identically on refresh (the reproducibility the checked-in
// baseline depends on).
func TestBaselineRoundTrip(t *testing.T) {
	reports, err := Run(context.Background(), Options{Cells: tinyCells(t)})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	b := BaselineFrom(reports)
	if len(b.Cells) == 0 {
		t.Fatal("empty baseline from a real run")
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "b1.json")
	p2 := filepath.Join(dir, "b2.json")
	if err := WriteBaseline(p1, b); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	got, err := LoadBaseline(p1)
	if err != nil {
		t.Fatalf("LoadBaseline: %v", err)
	}
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, b)
	}
	// The run that produced the baseline passes its own gate.
	if err := CheckBaseline(got, reports, 0.01); err != nil {
		t.Fatalf("self-gate: %v", err)
	}
	// A rerun refreshes the baseline byte-identically.
	rerun, err := Run(context.Background(), Options{Cells: tinyCells(t)})
	if err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if err := WriteBaseline(p2, BaselineFrom(rerun)); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if !bytes.Equal(b1, b2) {
		t.Fatalf("refreshed baseline differs byte-wise:\n%s\nvs\n%s", b1, b2)
	}
}

// TestCheckedInBaseline gates a fresh full-matrix run against the
// committed baseline — the same check CI runs, so a quality
// regression fails `go test ./...` before it ever reaches CI. The
// tolerance matches the CI job's.
func TestCheckedInBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix in -short mode")
	}
	b, err := LoadBaseline(filepath.Join("baseline", "QUALITY_baseline.json"))
	if err != nil {
		t.Fatalf("checked-in baseline: %v", err)
	}
	reports, err := Run(context.Background(), Options{Parallelism: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := CheckBaseline(b, reports, 0.01); err != nil {
		t.Fatalf("full matrix vs checked-in baseline: %v", err)
	}
}
