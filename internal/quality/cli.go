package quality

import (
	"context"
	"fmt"
	"io"
	"os"
)

// CLIConfig is the run → write reports → refresh-or-gate pipeline
// shared by cmd/qualityrun and benchrun -quality, so the two entry
// points cannot drift.
type CLIConfig struct {
	Options
	// OutDir receives one QUALITY_<solver>.json per solver.
	OutDir string
	// BaselinePath, when set, is gated against (or refreshed when
	// UpdateBaseline is set).
	BaselinePath string
	// Tolerance is the allowed absolute F1 drop vs the baseline
	// (0 = exact, negative = the 0.01 default).
	Tolerance float64
	// UpdateBaseline rewrites BaselinePath from this run instead of
	// gating. A full run (no Solvers/Cells restriction) replaces the
	// file — so cells removed from the matrix drop out — while a
	// subset run merges into it, leaving unmeasured entries gated:
	// refreshing one solver must not silently disarm the others.
	UpdateBaseline bool
	// Stdout and Stderr default to the process streams.
	Stdout, Stderr io.Writer
}

// RunCLI executes the pipeline and returns the process exit code:
// 0 ok, 1 run/IO error, 2 F1 gate failure.
func RunCLI(ctx context.Context, cfg CLIConfig) int {
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	reports, err := Run(ctx, cfg.Options)
	if err != nil {
		fmt.Fprintln(stderr, "quality:", err)
		return 1
	}
	paths, err := WriteReports(cfg.OutDir, reports)
	if err != nil {
		fmt.Fprintln(stderr, "quality:", err)
		return 1
	}
	for _, p := range paths {
		fmt.Fprintln(stdout, "wrote", p)
	}
	if cfg.BaselinePath == "" {
		return 0
	}

	if cfg.UpdateBaseline {
		fresh := BaselineFrom(reports)
		fresh.RecordedOn = reports[0].GoVersion
		if subset := len(cfg.Solvers) > 0 || len(cfg.Cells) > 0; subset {
			prev, err := LoadBaseline(cfg.BaselinePath)
			switch {
			case err == nil:
				prev.Merge(fresh)
				fresh = prev
			case !os.IsNotExist(err):
				fmt.Fprintln(stderr, "quality:", err)
				return 1
			}
		}
		if err := WriteBaseline(cfg.BaselinePath, fresh); err != nil {
			fmt.Fprintln(stderr, "quality:", err)
			return 1
		}
		fmt.Fprintf(stdout, "updated baseline %s (%d solvers)\n", cfg.BaselinePath, len(fresh.Cells))
		return 0
	}

	b, err := LoadBaseline(cfg.BaselinePath)
	if err != nil {
		fmt.Fprintln(stderr, "quality:", err)
		return 1
	}
	tol := cfg.Tolerance
	if tol < 0 {
		tol = 0.01
	}
	// A subset run gates only what it measured; the full run (CI)
	// gates everything the baseline records.
	if err := CheckBaseline(b.Restrict(cfg.Solvers, cfg.Cells), reports, tol); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "quality gate ok: all F1 within %g of baseline %s\n", tol, cfg.BaselinePath)
	return 0
}
