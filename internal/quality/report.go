package quality

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// ReportFileName returns the canonical per-solver report file name.
func ReportFileName(solver string) string {
	return fmt.Sprintf("QUALITY_%s.json", solver)
}

// WriteReports writes one QUALITY_<solver>.json per report into dir,
// creating it if needed.
func WriteReports(dir string, reports []*Report) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	for _, r := range reports {
		path := filepath.Join(dir, ReportFileName(r.Solver))
		data, err := json.MarshalIndent(r, "", "  ")
		if err != nil {
			return nil, err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return nil, err
		}
		paths = append(paths, path)
	}
	return paths, nil
}

// LoadReport reads one QUALITY_<solver>.json file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("quality: report %s: %w", path, err)
	}
	return &r, nil
}
