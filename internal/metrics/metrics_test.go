package metrics

import (
	"math"
	"testing"

	"schemamap/internal/data"
	"schemamap/internal/tgd"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMappingPRF(t *testing.T) {
	gold := tgd.Mapping{
		tgd.MustParse("a(x) -> b(x)"),
		tgd.MustParse("c(x) -> d(x,E)"),
	}
	sel := tgd.Mapping{
		tgd.MustParse("a(y) -> b(y)"), // matches up to renaming
		tgd.MustParse("e(x) -> f(x)"), // false positive
	}
	m := MappingPRF(sel, gold)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Errorf("counts = %d/%d/%d", m.TP, m.FP, m.FN)
	}
	if !approx(m.Precision, 0.5) || !approx(m.Recall, 0.5) || !approx(m.F1(), 0.5) {
		t.Errorf("PRF = %v", m)
	}
}

func TestMappingPRFEmptyConventions(t *testing.T) {
	gold := tgd.Mapping{tgd.MustParse("a(x) -> b(x)")}
	m := MappingPRF(nil, gold)
	if !approx(m.Precision, 1) || !approx(m.Recall, 0) || !approx(m.F1(), 0) {
		t.Errorf("empty selection PRF = %v", m)
	}
	m = MappingPRF(gold, nil)
	if !approx(m.Precision, 0) || !approx(m.Recall, 1) {
		t.Errorf("empty gold PRF = %v", m)
	}
	m = MappingPRF(nil, nil)
	if !approx(m.F1(), 1) {
		t.Errorf("empty/empty F1 = %v", m.F1())
	}
}

func TestTuplePRFPerfect(t *testing.T) {
	I := data.NewInstance()
	I.Add(data.NewTuple("r", "1", "2"))
	I.Add(data.NewTuple("r", "3", "4"))
	gold := tgd.Mapping{tgd.MustParse("r(x,y) -> s(x,y)")}
	m := TuplePRF(I, gold, gold)
	if !approx(m.F1(), 1) {
		t.Errorf("self F1 = %v", m.F1())
	}
}

func TestTuplePRFNullInsensitive(t *testing.T) {
	I := data.NewInstance()
	I.Add(data.NewTuple("r", "1", "2"))
	// Both mappings copy x and invent the second position: their chase
	// outputs differ only in null labels.
	a := tgd.Mapping{tgd.MustParse("r(x,y) -> s(x,E)")}
	b := tgd.Mapping{tgd.MustParse("r(x,y) -> s(x,F)")}
	m := TuplePRF(I, a, b)
	if !approx(m.F1(), 1) {
		t.Errorf("null-renamed F1 = %v", m.F1())
	}
	// But a mapping copying y differs.
	c := tgd.Mapping{tgd.MustParse("r(x,y) -> s(y,E)")}
	m = TuplePRF(I, a, c)
	if approx(m.F1(), 1) {
		t.Errorf("different outputs scored F1=1")
	}
}

func TestInstancePRFCounts(t *testing.T) {
	got := data.NewInstance()
	got.Add(data.NewTuple("s", "1"))
	got.Add(data.NewTuple("s", "2"))
	want := data.NewInstance()
	want.Add(data.NewTuple("s", "1"))
	want.Add(data.NewTuple("s", "3"))
	m := InstancePRF(got, want)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 {
		t.Errorf("counts = %d/%d/%d", m.TP, m.FP, m.FN)
	}
}

func TestPRFString(t *testing.T) {
	m := PRF{Precision: 0.5, Recall: 1}
	if m.String() == "" {
		t.Error("empty String")
	}
	if !approx(m.F1(), 2.0/3.0) {
		t.Errorf("F1 = %v", m.F1())
	}
	zero := PRF{}
	if !approx(zero.F1(), 0) {
		t.Errorf("zero F1 = %v", zero.F1())
	}
}
