package metrics

import (
	"strings"
	"sync"
	"testing"
)

func TestPromTextFormat(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Total requests.")
	c.Inc()
	c.Add(2)
	g := r.Gauge("inflight", "In-flight requests.")
	g.Set(3)
	g.Add(-1)
	r.CounterWith("solves_total", "Solves per solver.", "solver", "greedy").Add(5)
	r.CounterWith("solves_total", "Solves per solver.", "solver", "collective").Inc()
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(7)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Total requests.",
		"# TYPE requests_total counter",
		"requests_total 3",
		"inflight 2",
		"# TYPE solves_total counter",
		`solves_total{solver="greedy"} 5`,
		`solves_total{solver="collective"} 1`,
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{le="0.1"} 1`,
		`latency_seconds_bucket{le="1"} 2`,
		`latency_seconds_bucket{le="+Inf"} 3`,
		"latency_seconds_sum 7.55",
		"latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// One HELP line per family, not per series.
	if got := strings.Count(out, "# HELP solves_total"); got != 1 {
		t.Errorf("HELP solves_total emitted %d times", got)
	}
}

// WriteText output must not depend on the order requests happened to
// create metrics in: two registries holding the same state render
// byte-identically whatever their creation order was.
func TestWriteTextOrderIndependent(t *testing.T) {
	build := func(order []func(*Registry)) string {
		r := NewRegistry()
		for _, f := range order {
			f(r)
		}
		var b strings.Builder
		if err := r.WriteText(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}
	greedy := func(r *Registry) { r.CounterWith("solves_total", "Solves.", "solver", "greedy").Add(2) }
	collective := func(r *Registry) { r.CounterWith("solves_total", "Solves.", "solver", "collective").Inc() }
	sessions := func(r *Registry) { r.Counter("sessions_total", "Sessions.").Add(3) }
	inflight := func(r *Registry) { r.Gauge("inflight", "In flight.").Set(1) }
	hist := func(r *Registry) { r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1}).Observe(0.5) }

	a := build([]func(*Registry){greedy, collective, sessions, inflight, hist})
	b := build([]func(*Registry){hist, inflight, sessions, collective, greedy})
	if a != b {
		t.Fatalf("render depends on creation order:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
	// And the order is the sorted one, so goldens stay stable.
	if !strings.Contains(a, "inflight") || strings.Index(a, "# HELP inflight") > strings.Index(a, "# HELP latency_seconds") {
		t.Errorf("families not sorted by name:\n%s", a)
	}
	if strings.Index(a, `solver="collective"`) > strings.Index(a, `solver="greedy"`) {
		t.Errorf("series not sorted by label:\n%s", a)
	}
}

func TestCounterIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	if l1, l2 := r.CounterWith("y_total", "y", "k", "v"), r.CounterWith("y_total", "y", "k", "w"); l1 == l2 {
		t.Fatal("distinct label values should be distinct series")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "q", []float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all in the (1,2] bucket
	}
	if got := h.Quantile(0.5); got < 1 || got > 2 {
		t.Errorf("p50 = %v, want inside (1,2]", got)
	}
	if got := h.Quantile(0.99); got < 1 || got > 2 {
		t.Errorf("p99 = %v, want inside (1,2]", got)
	}
	h.Observe(100) // clamps to the last bound
	if got := h.Quantile(1); got != 4 {
		t.Errorf("p100 = %v, want clamp to 4", got)
	}
	empty := r.Histogram("e_seconds", "e", nil)
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %v", got)
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c_total", "c").Inc()
				r.Histogram("h_seconds", "h", nil).Observe(0.001)
				r.CounterWith("l_total", "l", "k", "v").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "c").Value(); got != 8000 {
		t.Errorf("c_total = %v, want 8000", got)
	}
	if got := r.Histogram("h_seconds", "h", nil).Count(); got != 8000 {
		t.Errorf("h_seconds count = %d, want 8000", got)
	}
}
