// Package metrics implements the evaluation measures used by the
// paper's experiments: precision/recall/F1 of a selected mapping at
// the mapping level (selected tgds vs the gold mapping, up to logical
// equality) and at the tuple level (the data the selected mapping
// exchanges vs the data the gold mapping exchanges, compared up to
// null renaming).
package metrics

import (
	"fmt"

	"schemamap/internal/chase"
	"schemamap/internal/data"
	"schemamap/internal/tgd"
)

// PRF is a precision/recall/F1 triple.
type PRF struct {
	Precision  float64
	Recall     float64
	TP, FP, FN int
}

// F1 returns the harmonic mean of precision and recall.
func (m PRF) F1() float64 {
	if m.Precision+m.Recall == 0 {
		return 0
	}
	return 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
}

// String renders the triple compactly.
func (m PRF) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f", m.Precision, m.Recall, m.F1())
}

// prf builds a PRF from counts, with the empty-set conventions:
// precision of an empty selection is 1 (nothing wrongly selected),
// recall of an empty gold set is 1.
func prf(tp, fp, fn int) PRF {
	m := PRF{TP: tp, FP: fp, FN: fn}
	if tp+fp == 0 {
		m.Precision = 1
	} else {
		m.Precision = float64(tp) / float64(tp+fp)
	}
	if tp+fn == 0 {
		m.Recall = 1
	} else {
		m.Recall = float64(tp) / float64(tp+fn)
	}
	return m
}

// MappingPRF compares a selected mapping against the gold mapping at
// the tgd level, up to logical equality (canonical forms).
func MappingPRF(selected, gold tgd.Mapping) PRF {
	selSet := selected.CanonicalSet()
	goldSet := gold.CanonicalSet()
	tp, fp, fn := 0, 0, 0
	for c := range selSet {
		if goldSet[c] {
			tp++
		} else {
			fp++
		}
	}
	for c := range goldSet {
		if !selSet[c] {
			fn++
		}
	}
	return prf(tp, fp, fn)
}

// TuplePRF compares the target instance exchanged by the selected
// mapping against the one exchanged by the gold mapping. Tuples are
// compared up to renaming of labelled nulls via canonical patterns
// (multiset semantics reduced to sets, as chase output is a set).
func TuplePRF(I *data.Instance, selected, gold tgd.Mapping) PRF {
	km := chase.Chase(I, selected, nil).Instance
	kg := chase.Chase(I, gold, nil).Instance
	return InstancePRF(km, kg)
}

// InstancePRF compares two instances up to null renaming.
func InstancePRF(got, want *data.Instance) PRF {
	gotPats := patternSet(got)
	wantPats := patternSet(want)
	tp, fp, fn := 0, 0, 0
	for p := range gotPats {
		if wantPats[p] {
			tp++
		} else {
			fp++
		}
	}
	for p := range wantPats {
		if !gotPats[p] {
			fn++
		}
	}
	return prf(tp, fp, fn)
}

func patternSet(in *data.Instance) map[string]bool {
	out := make(map[string]bool, in.Len())
	for _, t := range in.All() {
		out[t.CanonPattern()] = true
	}
	return out
}
