package metrics

// Runtime telemetry for serving workloads: a small, dependency-free
// metric registry (counters, gauges, fixed-bucket histograms, each
// with an optional single label) rendered in the Prometheus text
// exposition format. internal/serve registers its prepare/solve
// latency histograms and cache counters here and exports them on
// GET /metrics; anything that scrapes Prometheus text can consume it.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
)

// Registry holds a set of named metrics. The zero value is not usable;
// create one with NewRegistry. All methods are safe for concurrent
// use.
type Registry struct {
	mu       sync.Mutex // guards families, byName (and every family's series map)
	families []*family
	byName   map[string]*family
}

// family groups the series of one metric name (HELP/TYPE are emitted
// once per name, then one line per label value). name/help/typ are
// immutable after creation.
type family struct {
	name, help, typ string
	series          map[string]series // guarded by Registry.mu
}

type series interface {
	write(w io.Writer, name, labels string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

//lint:guarded-by-caller get and WriteText hold r.mu around every family access
func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, series: make(map[string]series)}
		r.byName[name] = f
		r.families = append(r.families, f)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("metrics: %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

// get returns the series for (name, label), creating it with mk on
// first use. label is the pre-rendered label block ("" or
// `{key="value"}`).
func (r *Registry) get(name, help, typ, label string, mk func() series) series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, typ)
	s, ok := f.series[label]
	if !ok {
		s = mk()
		f.series[label] = s
	}
	return s
}

// Counter returns the counter named name (created on first use).
func (r *Registry) Counter(name, help string) *Counter {
	return r.get(name, help, "counter", "", func() series { return &Counter{} }).(*Counter)
}

// CounterWith is Counter for a labelled series, e.g.
// CounterWith("solves_total", "...", "solver", "greedy"). Series of
// one name share HELP/TYPE and are rendered as a family.
func (r *Registry) CounterWith(name, help, label, value string) *Counter {
	return r.get(name, help, "counter", renderLabel(label, value), func() series { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge named name (created on first use).
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.get(name, help, "gauge", "", func() series { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram named name (created on first use
// with the given bucket upper bounds, which must be sorted ascending;
// nil means DefaultLatencyBuckets). Later calls ignore the buckets
// argument.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.histogramSeries(name, help, "", buckets)
}

// HistogramWith is Histogram for a labelled series.
func (r *Registry) HistogramWith(name, help, label, value string, buckets []float64) *Histogram {
	return r.histogramSeries(name, help, renderLabel(label, value), buckets)
}

func (r *Registry) histogramSeries(name, help, label string, buckets []float64) *Histogram {
	return r.get(name, help, "histogram", label, func() series {
		if buckets == nil {
			buckets = DefaultLatencyBuckets()
		}
		return newHistogram(buckets)
	}).(*Histogram)
}

// WriteText renders every registered metric in the Prometheus text
// exposition format. Output is byte-identical for equal metric state:
// families render sorted by name and series sorted by label block, so
// the order requests happened to create them in (a per-run artifact of
// scheduling) never shows through. Serving tests diff /metrics bodies
// directly and depend on this.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		labels := make([]string, 0, len(f.series))
		for label := range f.series {
			labels = append(labels, label)
		}
		sort.Strings(labels)
		for _, label := range labels {
			f.series[label].write(w, f.name, label)
		}
	}
	return nil
}

// renderLabel renders one label pair as a series suffix, escaping the
// value per the exposition format.
func renderLabel(key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return fmt.Sprintf("{%s=%q}", key, esc)
}

// Counter is a monotonically increasing value.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta (negative deltas are a programming error and panic).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		panic("metrics: counter decremented")
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

func (c *Counter) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(c.Value()))
}

// Gauge is a value that can go up and down.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	g.mu.Lock()
	g.v = v
	g.mu.Unlock()
}

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) {
	g.mu.Lock()
	g.v += delta
	g.mu.Unlock()
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func (g *Gauge) write(w io.Writer, name, labels string) {
	fmt.Fprintf(w, "%s%s %s\n", name, labels, formatValue(g.Value()))
}

// Histogram counts observations into fixed cumulative buckets.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; +Inf implicit
	counts []uint64  // per-bound (non-cumulative)
	infCnt uint64
	sum    float64
	total  uint64
}

// DefaultLatencyBuckets returns bounds suited to request latencies in
// seconds, 0.5ms to 10s.
func DefaultLatencyBuckets() []float64 {
	return []float64{
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram buckets not ascending")
		}
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sum += v
	h.total++
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i]++
	} else {
		h.infCnt++
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the buckets by
// linear interpolation inside the containing bucket — the usual
// histogram_quantile approximation; observations above the last bound
// clamp to it. It returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	cum := uint64(0)
	lower := 0.0
	for i, c := range h.counts {
		if float64(cum+c) >= rank && c > 0 {
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += c
		lower = h.bounds[i]
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, name, labels string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	for i, c := range h.counts {
		cum += c
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, h.bounds[i]), cum)
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, math.Inf(1)), cum+h.infCnt)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, h.total)
}

// bucketLabels merges a series' label block with the le bucket label.
func bucketLabels(labels string, bound float64) string {
	le := "+Inf"
	if !math.IsInf(bound, 1) {
		le = formatValue(bound)
	}
	if labels == "" {
		return fmt.Sprintf(`{le="%s"}`, le)
	}
	return fmt.Sprintf(`%s,le="%s"}`, strings.TrimSuffix(labels, "}"), le)
}

func formatValue(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
