// Benchmarks regenerating every table and figure of the paper's
// evaluation (one benchmark per artifact; see DESIGN.md's experiment
// index and EXPERIMENTS.md for recorded outputs). Benchmarks use the
// quick experiment scale so the full suite stays CI-friendly; run
// cmd/experiments for the full-size tables.
package schemamap_test

import (
	"context"
	"testing"

	schemamap "schemamap"
	"schemamap/internal/core"
	"schemamap/internal/experiments"
	"schemamap/internal/ibench"
)

func quickOpts() experiments.Options {
	return experiments.Options{Quick: true, Seeds: 1, BaseSeed: 1}
}

func benchTable(b *testing.B, run func() error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendixExample regenerates EX0 (the appendix §I objective
// table).
func BenchmarkAppendixExample(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.EX0AppendixExample(context.Background())
		return err
	})
}

// BenchmarkSetCoverReduction regenerates EX2 (the appendix §III
// NP-hardness reduction).
func BenchmarkSetCoverReduction(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.EX2SetCover(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE1PrimitiveQuality regenerates E1 (per-primitive quality).
func BenchmarkE1PrimitiveQuality(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E1PrimitiveQuality(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE2CorrespSweep regenerates E2 (piCorresp sweep).
func BenchmarkE2CorrespSweep(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E2CorrespSweep(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE3ErrorsSweep regenerates E3 (piErrors sweep).
func BenchmarkE3ErrorsSweep(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E3ErrorsSweep(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE4UnexplainedSweep regenerates E4 (piUnexplained sweep).
func BenchmarkE4UnexplainedSweep(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E4UnexplainedSweep(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE5Scaling regenerates E5 (runtime vs scenario size).
func BenchmarkE5Scaling(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E5Scaling(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE6ApproxQuality regenerates E6 (gap to the exact optimum).
func BenchmarkE6ApproxQuality(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E6ApproxQuality(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE7WeightAblation regenerates E7 (objective-weight sweep).
func BenchmarkE7WeightAblation(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E7WeightAblation(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE8CorroborationAblation regenerates E8 (covers-semantics
// ablation).
func BenchmarkE8CorroborationAblation(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E8CorroborationAblation(context.Background(), quickOpts())
		return err
	})
}

// BenchmarkE9WeightLearning regenerates E9 (learned objective
// weights).
func BenchmarkE9WeightLearning(b *testing.B) {
	benchTable(b, func() error {
		_, err := experiments.E9WeightLearning(context.Background(), quickOpts())
		return err
	})
}

// Component micro-benchmarks: the moving parts a user pays for.

func benchScenario(b *testing.B, n int) *ibench.Scenario {
	b.Helper()
	cfg := ibench.DefaultConfig(n, 42)
	cfg.PiCorresp = 25
	sc, err := ibench.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// BenchmarkScenarioGeneration measures iBench scenario synthesis.
func BenchmarkScenarioGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := ibench.DefaultConfig(7, int64(i))
		cfg.PiCorresp = 25
		if _, err := ibench.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProblemPrepare measures the Eq. (9) evidence computation
// (chase + block homomorphism search for every candidate).
func BenchmarkProblemPrepare(b *testing.B) {
	sc := benchScenario(b, 7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := core.NewProblem(sc.I, sc.J, sc.Candidates)
		p.Prepare()
	}
}

// BenchmarkCollectiveSolve measures the paper's solver end to end
// (grounding + ADMM + rounding + repair) on a prepared problem.
func BenchmarkCollectiveSolve(b *testing.B) {
	sc := benchScenario(b, 7)
	p := core.NewProblem(sc.I, sc.J, sc.Candidates)
	p.Prepare()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.CollectiveSolver{}).Solve(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedySolve measures the greedy baseline on the same
// problem.
func BenchmarkGreedySolve(b *testing.B) {
	sc := benchScenario(b, 7)
	p := core.NewProblem(sc.I, sc.J, sc.Candidates)
	p.Prepare()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (core.GreedySolver{}).Solve(context.Background(), p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPublicAPIEndToEnd exercises the facade: generate, solve,
// score.
func BenchmarkPublicAPIEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sc, err := schemamap.GenerateScenario(schemamap.DefaultScenarioConfig(4, int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		p := schemamap.NewProblem(sc.I, sc.J, sc.Candidates)
		sel, err := schemamap.Collective().Solve(context.Background(), p)
		if err != nil {
			b.Fatal(err)
		}
		_ = schemamap.MappingPRF(p.SelectedMapping(sel.Chosen), sc.Gold)
	}
}
