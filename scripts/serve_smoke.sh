#!/usr/bin/env bash
# End-to-end smoke of cmd/mapserve: boot the server, run a full session
# round trip (create from an uploaded scenario → append → solve →
# status → delete), assert the Prometheus counters moved, then verify
# graceful drain — a solve in flight when SIGTERM lands must complete
# with 200 while new requests get 503, and the process must exit 0.
#
# Requirements: go, curl, jq. Usage: scripts/serve_smoke.sh [port]
set -euo pipefail

PORT="${1:-8091}"
BASE="http://127.0.0.1:$PORT"
TMP="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$TMP"
}
trap cleanup EXIT

fail() { echo "serve_smoke: FAIL: $*" >&2; exit 1; }

echo "== build"
go build -o "$TMP/mapserve" ./cmd/mapserve

echo "== boot"
"$TMP/mapserve" -addr "127.0.0.1:$PORT" -debug-solvers -max-budget 10s \
  2>"$TMP/server.log" &
SERVER_PID=$!
for i in $(seq 1 50); do
  curl -fsS "$BASE/healthz" >/dev/null 2>&1 && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$TMP/server.log" >&2; fail "server died on boot"; }
  sleep 0.2
done
curl -fsS "$BASE/healthz" | jq -e '.status == "ok"' >/dev/null || fail "healthz not ok"

echo "== create (uploaded scenario)"
go run ./cmd/scenariogen -n 5 -seed 42 \
  -picorresp 20 -pierrors 10 -piunexplained 10 -o "$TMP/sc.json"
jq '{scenario: .}' "$TMP/sc.json" >"$TMP/create.json"
CREATE=$(curl -fsS -X POST "$BASE/sessions" --data-binary @"$TMP/create.json")
ID=$(echo "$CREATE" | jq -r .id)
[ -n "$ID" ] && [ "$ID" != null ] || fail "create returned no session id: $CREATE"
echo "   session $ID ($(echo "$CREATE" | jq -r .candidates) candidates)"

# A second create of the same content must hit the prepared-problem
# cache (sharedPrepare on a fresh session of an already-seen scenario).
CREATE2=$(curl -fsS -X POST "$BASE/sessions" --data-binary @"$TMP/create.json")
[ "$(echo "$CREATE" | jq -r .scenarioKey)" = "$(echo "$CREATE2" | jq -r .scenarioKey)" ] \
  || fail "equal uploads produced different scenario keys"

echo "== append (fresh tuple for an existing target relation)"
REL=$(jq -r '.j | keys[0]' "$TMP/sc.json")
ARITY=$(jq -r --arg rel "$REL" '.j[$rel][0] | length' "$TMP/sc.json")
jq -n --arg rel "$REL" --argjson n "$ARITY" \
  '{tuples: [{rel: $rel, args: [range($n) | "c:smoke\(.)"]}]}' >"$TMP/append.json"
APPEND=$(curl -fsS -X POST "$BASE/sessions/$ID/append" --data-binary @"$TMP/append.json")
echo "$APPEND" | jq -e '.added == 1 and .forked == true' >/dev/null \
  || fail "append did not add+fork: $APPEND"

echo "== solve (greedy, warm off then on)"
SOLVE=$(curl -fsS -X POST "$BASE/sessions/$ID/solve" -d '{"solver":"greedy"}')
echo "$SOLVE" | jq -e '.solver == "greedy" and (.objective.total | type == "number")' >/dev/null \
  || fail "solve response malformed: $SOLVE"
WARM=$(curl -fsS -X POST "$BASE/sessions/$ID/solve" -d '{"solver":"greedy","warm":true}')
echo "$WARM" | jq -e '.warm == true' >/dev/null || fail "warm solve did not warm-start: $WARM"
[ "$(echo "$SOLVE" | jq .objective.total)" = "$(echo "$WARM" | jq .objective.total)" ] \
  || fail "warm objective diverged on an unchanged target"

echo "== status + metrics"
curl -fsS "$BASE/sessions/$ID" | jq -e '.solves == 2 and .appends == 1' >/dev/null \
  || fail "status counters wrong"
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -q '^serve_sessions_created_total 2$' || fail "sessions_created counter did not move"
echo "$METRICS" | grep -q '^serve_prepare_cache_hits_total 1$' || fail "cache hit counter did not move"
echo "$METRICS" | grep -q 'serve_solves_total{solver="greedy"} 2' || fail "per-solver solve counter did not move"
echo "$METRICS" | grep -q '^serve_appended_tuples_total 1$' || fail "appended tuples counter did not move"
echo "$METRICS" | grep -q '^serve_session_forks_total 1$' || fail "fork counter did not move"

echo "== delete"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X DELETE "$BASE/sessions/$ID")
[ "$CODE" = 204 ] || fail "delete returned $CODE"
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/sessions/$ID")
[ "$CODE" = 404 ] || fail "deleted session still answers ($CODE)"

echo "== graceful drain"
# Put a 3s sleep-solver solve in flight, SIGTERM the server mid-solve:
# the in-flight solve must complete 200/truncated, new requests 503,
# and the exit code must be 0.
ID2=$(echo "$CREATE2" | jq -r .id)
curl -s -o "$TMP/inflight.json" -w '%{http_code}' -X POST "$BASE/sessions/$ID2/solve" \
  -d '{"solver":"sleep","budgetMillis":3000}' >"$TMP/inflight.code" &
CURL_PID=$!
sleep 0.7
kill -TERM "$SERVER_PID"
sleep 0.3
CODE=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/healthz")
[ "$CODE" = 503 ] || fail "healthz while draining returned $CODE (want 503)"
CODE=$(curl -s -o /dev/null -w '%{http_code}' -X POST "$BASE/sessions" --data-binary @"$TMP/create.json")
[ "$CODE" = 503 ] || fail "create while draining returned $CODE (want 503)"
wait "$CURL_PID"
CODE=$(cat "$TMP/inflight.code")
[ "$CODE" = 200 ] || fail "in-flight solve finished with $CODE (want 200): $(cat "$TMP/inflight.json")"
jq -e '.truncated == true and .solver == "sleep"' "$TMP/inflight.json" >/dev/null \
  || fail "in-flight solve response malformed: $(cat "$TMP/inflight.json")"
if wait "$SERVER_PID"; then
  SERVER_PID=""
else
  cat "$TMP/server.log" >&2
  fail "server exited non-zero after drain"
fi
grep -q 'drained, bye' "$TMP/server.log" || fail "server log missing drain completion"

echo "serve_smoke: OK"
